(** Plain-text table rendering for experiment output.  Every
    reproduction table (Figures 7, 9, 10, 11) is printed through this
    module so `bench_output.txt` is uniform and diffable. *)

type align = Left | Right

(** [render ~headers rows] lays out a column-aligned table.  Numeric
    columns should be pre-formatted by the caller; alignment defaults
    to left for the first column and right elsewhere. *)
let render ?aligns ~headers rows =
  let ncols = List.length headers in
  let aligns =
    match aligns with
    | Some a -> a
    | None -> List.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell -> if i < ncols then widths.(i) <- max widths.(i) (String.length cell)) row
  in
  measure headers;
  List.iter measure rows;
  let pad align width s =
    let n = width - String.length s in
    if n <= 0 then s
    else match align with Left -> s ^ String.make n ' ' | Right -> String.make n ' ' ^ s
  in
  let line row =
    String.concat "  "
      (List.mapi (fun i cell -> pad (List.nth aligns i) widths.(i) cell) row)
  in
  let sep =
    String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  String.concat "\n" (line headers :: sep :: List.map line rows)

let print ?aligns ~headers rows = print_endline (render ?aligns ~headers rows)

let fmt_float ?(prec = 1) f =
  if Float.is_integer f && Float.abs f < 1e15 && prec = 0 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.*f" prec f

(** Renders a histogram as rows of percentage bars, the textual
    analogue of Figure 10's charts. *)
let render_histogram ?(width = 50) buckets =
  let bar pct = String.make (int_of_float (pct /. 100.0 *. float_of_int width)) '#' in
  String.concat "\n"
    (List.map
       (fun (lo, hi, pct) ->
         Printf.sprintf "  [%12.3e, %12.3e)  %5.1f%% %s" lo hi pct (bar pct))
       buckets)
