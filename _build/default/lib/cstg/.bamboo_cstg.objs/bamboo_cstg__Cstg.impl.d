lib/cstg/cstg.ml: Array Bamboo_analysis Bamboo_ir Bamboo_support Hashtbl List Printf
