(** Combined state transition graph (§2.4, §4.3.1; the paper's
    Figure 3).

    The CSTG glues the per-class ASTGs together and adds dashed
    new-object edges from tasks to the abstract states their
    allocations produce.  Annotated with profile statistics it forms
    the Markov model that both the scheduling simulator and the
    candidate-generation rules consume. *)

module Ir = Bamboo_ir.Ir
module Astg = Bamboo_analysis.Astg
module Dot = Bamboo_support.Dot

type state_id = Ir.class_id * Astg.astate

type transition = {
  c_src : state_id;
  c_task : Ir.task_id;
  c_exit : int;
  c_dst : state_id;
}

(** Dashed edge: [c_by] may allocate objects at [c_site], which enter
    [c_into]. *)
type new_edge = { c_by : Ir.task_id; c_site : Ir.site_id; c_into : state_id }

type t = {
  prog : Ir.program;
  astgs : Astg.t array;
  states : state_id list;
  alloc_states : (state_id * Ir.site_id list) list;
  transitions : transition list;
  new_edges : new_edge list;
}

let build (prog : Ir.program) (astgs : Astg.t array) : t =
  let states =
    Array.to_list astgs
    |> List.concat_map (fun (a : Astg.t) -> List.map (fun s -> (a.Astg.a_class, s)) a.a_states)
  in
  let alloc_states =
    Array.to_list astgs
    |> List.concat_map (fun (a : Astg.t) ->
           List.map (fun (s, sites) -> ((a.Astg.a_class, s), sites)) a.a_alloc)
  in
  let transitions =
    Array.to_list astgs
    |> List.concat_map (fun (a : Astg.t) ->
           List.map
             (fun (tr : Astg.transition) ->
               {
                 c_src = (a.Astg.a_class, tr.tr_src);
                 c_task = tr.tr_task;
                 c_exit = tr.tr_exit;
                 c_dst = (a.Astg.a_class, tr.tr_dst);
               })
             a.a_transitions)
  in
  (* New-object edges: every allocation site reachable from a task's
     body contributes an edge to that site's initial abstract state. *)
  let new_edges =
    Array.to_list prog.tasks
    |> List.concat_map (fun (task : Ir.taskinfo) ->
           Ir.reachable_sites prog task.t_body
           |> List.map (fun sid ->
                  let site = prog.sites.(sid) in
                  let s : Astg.astate =
                    {
                      as_flags = Ir.site_initial_word site;
                      as_tags = Astg.site_tag_bits prog site;
                    }
                  in
                  { c_by = task.t_id; c_site = sid; c_into = (site.s_class, s) }))
  in
  { prog; astgs; states; alloc_states; transitions; new_edges }

(** Tasks that may produce objects consumed by a given task, either by
    allocation or by state transition.  This is the task-level
    dependence relation used by candidate generation. *)
let producers_of (g : t) (tid : Ir.task_id) : Ir.task_id list =
  let task = g.prog.tasks.(tid) in
  let consumed (cid, s) =
    Array.exists
      (fun (p : Ir.paraminfo) -> p.p_class = cid && Astg.astate_satisfies p s)
      task.t_params
  in
  let from_new =
    List.filter_map (fun e -> if consumed e.c_into then Some e.c_by else None) g.new_edges
  in
  let from_trans =
    List.filter_map
      (fun tr -> if consumed tr.c_dst && tr.c_src <> tr.c_dst then Some tr.c_task else None)
      g.transitions
  in
  List.sort_uniq compare (from_new @ from_trans)

(* ------------------------------------------------------------------ *)
(* Rendering (Figure 3) *)

let state_node_id prog ((cid, s) : state_id) =
  Printf.sprintf "%s:%s" (Ir.class_of prog cid).c_name (Astg.string_of_astate prog cid s)

(** Render the CSTG as Graphviz dot.  With [annot] (task, exit) ->
    label text, edges carry profile annotations in the paper's
    [task:<time, probability>] style. *)
let to_dot ?(annot = fun ~task:_ ~exit_id:_ -> "") ?(state_annot = fun _ -> "") (g : t) : Dot.t
    =
  let d = Dot.create "cstg" in
  let alloc_ids = List.map (fun (s, _) -> s) g.alloc_states in
  (* States, clustered per class. *)
  let classes = List.sort_uniq compare (List.map fst g.states) in
  List.iter
    (fun cid ->
      let ids =
        List.filter (fun (c, _) -> c = cid) g.states |> List.map (state_node_id g.prog)
      in
      Dot.cluster d ~label:("Class " ^ (Ir.class_of g.prog cid).c_name) ids)
    classes;
  List.iter
    (fun ((cid, s) as st) ->
      let peripheries = if List.mem st alloc_ids then 2 else 1 in
      Dot.node d ~peripheries
        (state_node_id g.prog st)
        ~label:(Astg.string_of_astate g.prog cid s ^ state_annot st))
    g.states;
  (* Solid transition edges, merged per (src, task, dst). *)
  let seen = Hashtbl.create 64 in
  List.iter
    (fun tr ->
      let key = (tr.c_src, tr.c_task, tr.c_dst) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        let tname = g.prog.tasks.(tr.c_task).t_name in
        Dot.edge d
          (state_node_id g.prog tr.c_src)
          (state_node_id g.prog tr.c_dst)
          ~label:(tname ^ annot ~task:tr.c_task ~exit_id:tr.c_exit)
      end)
    g.transitions;
  (* Dashed new-object edges originate at a synthetic task node. *)
  let task_nodes = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let tname = g.prog.tasks.(e.c_by).t_name in
      let nid = "task:" ^ tname in
      if not (Hashtbl.mem task_nodes nid) then begin
        Hashtbl.replace task_nodes nid ();
        Dot.node d nid ~label:tname ~shape:"box"
      end;
      Dot.edge d nid (state_node_id g.prog e.c_into) ~label:"" ~style:"dashed")
    g.new_edges;
  d

(** Task-flow dot (the paper's Figure 8): tasks as nodes, data-flow
    edges between producer and consumer tasks. *)
let task_flow_dot (g : t) : Dot.t =
  let d = Dot.create "taskflow" in
  Array.iter
    (fun (t : Ir.taskinfo) -> Dot.node d t.t_name ~label:t.t_name ~shape:"box")
    g.prog.tasks;
  Array.iter
    (fun (t : Ir.taskinfo) ->
      List.iter
        (fun p ->
          Dot.edge d g.prog.tasks.(p).Ir.t_name t.t_name ~label:"")
        (producers_of g t.t_id))
    g.prog.tasks;
  d
