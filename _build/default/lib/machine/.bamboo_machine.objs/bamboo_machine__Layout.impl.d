lib/machine/layout.ml: Array Bamboo_ir Buffer Format Hashtbl List Machine Printf String
