(** Candidate implementation layouts (the paper's Figure 4).

    A layout assigns, for every task, the ordered list of cores that
    host an instantiation of that task.  Objects entering an abstract
    state that a task consumes are routed to one of the hosting cores
    — round-robin for single-parameter tasks, tag-hash for
    multi-instance tasks whose parameters share a tag constraint
    (§4.3.4). *)

module Ir = Bamboo_ir.Ir

type t = {
  machine : Machine.t;
  assignment : int array array;  (* task id -> cores hosting an instance *)
}

let create machine ~ntasks = { machine; assignment = Array.make ntasks [||] }

let copy l = { l with assignment = Array.map Array.copy l.assignment }

let cores_of l tid = l.assignment.(tid)

let set_cores l tid cores =
  Array.iter
    (fun c ->
      if c < 0 || c >= l.machine.Machine.cores then
        invalid_arg (Printf.sprintf "Layout.set_cores: core %d out of range" c))
    cores;
  l.assignment.(tid) <- cores

(** All cores that host at least one task. *)
let used_cores l =
  let seen = Hashtbl.create 16 in
  Array.iter (Array.iter (fun c -> Hashtbl.replace seen c ())) l.assignment;
  Hashtbl.fold (fun c () acc -> c :: acc) seen [] |> List.sort compare

(** Tasks hosted on a given core. *)
let tasks_on_core l core =
  let acc = ref [] in
  Array.iteri
    (fun tid cores -> if Array.exists (fun c -> c = core) cores then acc := tid :: !acc)
    l.assignment;
  List.rev !acc

(** A multi-parameter task may have several instantiations only when
    every parameter carries a tag constraint — otherwise objects for
    different parameters could be enqueued at different instantiations
    and the task would never fire (§4.3.4). *)
let multi_instance_ok (task : Ir.taskinfo) =
  Array.length task.t_params <= 1
  || Array.for_all (fun (p : Ir.paraminfo) -> p.p_tags <> []) task.t_params

(** Validate a layout against the program: every task hosted
    somewhere, and the multi-instantiation restriction honoured. *)
let validate (prog : Ir.program) l =
  let problems = ref [] in
  Array.iter
    (fun (t : Ir.taskinfo) ->
      let cores = l.assignment.(t.t_id) in
      if Array.length cores = 0 then
        problems := Printf.sprintf "task %s is not mapped to any core" t.t_name :: !problems;
      if Array.length cores > 1 && not (multi_instance_ok t) then
        problems :=
          Printf.sprintf "multi-parameter task %s has %d untagged instantiations" t.t_name
            (Array.length cores)
          :: !problems)
    prog.tasks;
  List.rev !problems

(** Canonical key for isomorphism pruning: layouts that differ only by
    a permutation of core ids produce the same key. *)
let canonical_key l =
  (* Rename cores in order of first appearance across the task list. *)
  let rename = Hashtbl.create 16 in
  let next = ref 0 in
  let buf = Buffer.create 64 in
  Array.iter
    (fun cores ->
      Buffer.add_char buf '[';
      let renamed =
        Array.map
          (fun c ->
            match Hashtbl.find_opt rename c with
            | Some r -> r
            | None ->
                let r = !next in
                incr next;
                Hashtbl.replace rename c r;
                r)
          cores
      in
      let renamed = Array.copy renamed in
      Array.sort compare renamed;
      Array.iter (fun r -> Buffer.add_string buf (string_of_int r); Buffer.add_char buf ',') renamed;
      Buffer.add_char buf ']')
    l.assignment;
  Buffer.contents buf

let pp (prog : Ir.program) fmt l =
  List.iter
    (fun core ->
      let tasks = tasks_on_core l core in
      Format.fprintf fmt "core %2d: %s@." core
        (String.concat ", " (List.map (fun tid -> prog.tasks.(tid).Ir.t_name) tasks)))
    (used_cores l)

let to_string prog l = Format.asprintf "%a" (pp prog) l
