lib/ir/ir.ml: Array Bamboo_ast Hashtbl List Printf String
