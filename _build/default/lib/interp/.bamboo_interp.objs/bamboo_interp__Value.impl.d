lib/interp/value.ml: Array Bamboo_ir List Printf
