lib/interp/cost.ml:
