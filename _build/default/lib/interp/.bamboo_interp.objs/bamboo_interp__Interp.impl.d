lib/interp/interp.ml: Array Bamboo_ir Buffer Char Cost Float Int64 List Printf String Value
