(** Cycle cost model.

    The TILEPro64 substitute charges a fixed cycle cost per IR
    operation.  Integer operations are cheap; floating point is
    costly (the TILEPro64 has no FPU — floating point runs in
    software); memory operations model L1-hit latencies; [Math.*]
    routines model the software libm.  The absolute values are a
    calibration, not a claim — experiments compare implementations
    under the *same* model, which is what preserves the paper's
    relative results. *)

let const = 1
let local = 1
let iarith = 1
let imul = 2
let idiv = 25
let farith = 4
let fmul = 5
let fdiv = 40
let cmp = 1
let branch = 1
let field_access = 3
let array_access = 3
let call_overhead = 15
let alloc_base = 30
let alloc_word = 1
let math_fn = 90
let str_base = 10
let str_per_char = 1
let print = 50
let rng_step = 20
let cast = 2

(* Runtime costs (charged by the runtime system, not the interpreter): *)

(** Dequeue a task invocation and run its guard checks. *)
let dispatch = 120

(** Acquire or release one parameter-object lock. *)
let lock_op = 40

(** Apply a taskexit's flag/tag actions and compute successor tasks. *)
let flag_update = 60

(** Enqueue an object into a (local) parameter set. *)
let enqueue = 30

(** Fixed overhead of sending an object reference to another core, on
    top of the mesh hop latency from the machine model. *)
let message_send = 80
