lib/synth/candidates.ml: Array Bamboo_analysis Bamboo_cstg Bamboo_graph Bamboo_ir Bamboo_machine Bamboo_profile Bamboo_support Hashtbl List
