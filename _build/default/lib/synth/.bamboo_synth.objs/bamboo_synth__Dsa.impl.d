lib/synth/dsa.ml: Array Bamboo_cstg Bamboo_ir Bamboo_machine Bamboo_profile Bamboo_sim Bamboo_support Candidates Hashtbl List
