(** FilterBank: multi-channel, multi-rate filter bank, ported from
    the StreamIt benchmark suite (§5.1).

    Each channel down-samples its input signal, applies an FIR band
    filter, up-samples, and reports its output energy; the combiner
    sums channel energies.  Args: [channels signal_length taps]. *)

let classes =
  {|
class Channel {
  flag process;
  flag submit;
  int id;
  int n;
  int taps;
  double energy;
  Channel(int id, int n, int taps) {
    this.id = id;
    this.n = n;
    this.taps = taps;
  }
  void compute() {
    // Synthesize the input signal and per-channel filter taps.
    Random rng = new Random(4099 + id * 31);
    double[] x = new double[n];
    for (int i = 0; i < n; i = i + 1) {
      x[i] = 2.0 * rng.nextDouble() - 1.0;
    }
    double[] h = new double[taps];
    for (int j = 0; j < taps; j = j + 1) {
      h[j] = Math.cos((id + 1.0) * j * 0.1) / taps;
    }
    // Down-sample by 2.
    int m = n / 2;
    double[] d = new double[m];
    for (int i = 0; i < m; i = i + 1) {
      d[i] = x[2 * i];
    }
    // FIR filter.
    double[] y = new double[m];
    for (int i = 0; i < m; i = i + 1) {
      double acc = 0.0;
      for (int j = 0; j < taps; j = j + 1) {
        if (i - j >= 0) {
          acc = acc + h[j] * d[i - j];
        }
      }
      y[i] = acc;
    }
    // Up-sample by 2 (zero-stuffing) and accumulate output energy.
    double e = 0.0;
    for (int i = 0; i < m; i = i + 1) {
      e = e + y[i] * y[i];
    }
    energy = e;
  }
}
class BankResults {
  flag finished;
  int expected;
  int seen;
  double total;
  BankResults(int expected) { this.expected = expected; }
  boolean combine(Channel c) {
    total = total + c.energy;
    seen = seen + 1;
    return seen == expected;
  }
}
|}

let tasks =
  {|
task startup(StartupObject s in initialstate) {
  int channels = Integer.parseInt(s.args[0]);
  int n = Integer.parseInt(s.args[1]);
  int taps = Integer.parseInt(s.args[2]);
  for (int c = 0; c < channels; c = c + 1) {
    Channel ch = new Channel(c, n, taps){process := true};
  }
  BankResults res = new BankResults(channels){finished := false};
  taskexit(s: initialstate := false);
}
task processChannel(Channel ch in process) {
  ch.compute();
  taskexit(ch: process := false, submit := true);
}
task combineChannel(BankResults res in !finished, Channel ch in submit) {
  boolean done = res.combine(ch);
  if (done) {
    System.printString("filterbank energy: " + (int)(res.total * 1000.0));
    taskexit(res: finished := true; ch: submit := false);
  }
  taskexit(ch: submit := false);
}
|}

let seq_tasks =
  {|
task startup(StartupObject s in initialstate) {
  int channels = Integer.parseInt(s.args[0]);
  int n = Integer.parseInt(s.args[1]);
  int taps = Integer.parseInt(s.args[2]);
  BankResults res = new BankResults(channels);
  for (int c = 0; c < channels; c = c + 1) {
    Channel ch = new Channel(c, n, taps);
    ch.compute();
    boolean done = res.combine(ch);
  }
  System.printString("filterbank energy: " + (int)(res.total * 1000.0));
  taskexit(s: initialstate := false);
}
|}

let benchmark : Bench_def.t =
  {
    b_name = "FilterBank";
    b_descr = "multi-channel multirate filter bank (StreamIt)";
    b_source = classes ^ tasks;
    b_seq_source = classes ^ seq_tasks;
    b_args = [ "124"; "1024"; "32" ];
    b_args_double = [ "248"; "1024"; "32" ];
    b_check = Bench_def.output_has "filterbank energy: ";
  }
