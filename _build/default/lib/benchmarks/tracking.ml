(** Tracking: feature tracking from the San Diego Vision Benchmark
    Suite (§5.1, Figure 8).

    Three phases, as in the paper's task-flow figure:

    - {b image processing}: per-piece synthesis + Gaussian blur of the
      base frame, merged into the master image;
    - {b feature extraction}: per-piece image gradients and corner
      responses, merged and reduced to the strongest [nfeatures]
      features;
    - {b feature tracking}: for every subsequent frame, per-piece
      template search recovers each feature's motion; a per-frame
      [FrameResult] collects the updated positions and the master
      advances to the next frame.

    The tracking loop uses {b tags}: each frame's [FramePiece] objects
    and its [FrameResult] share a fresh [frametag] instance, so the
    merge task always pairs pieces with the result of the same frame
    — the paper's motivating use of tags — and, because both
    parameters are tag-constrained, the merge task may be instantiated
    on several cores with tag-hash routing.

    Frames are synthetic: frame [f] is the analytic texture shifted by
    [f] pixels horizontally, so correct tracking reports an average
    displacement of 1 pixel/frame.  Args:
    [width height pieces frames nfeatures]. *)

let classes =
  {|
class ImagePiece {
  flag toBlur;
  flag blurred;
  int id;
  int y0;
  int rows;
  int width;
  double[] data;
  ImagePiece(int id, int y0, int rows, int width) {
    this.id = id;
    this.y0 = y0;
    this.rows = rows;
    this.width = width;
    this.data = new double[rows * width];
  }
  double base(int x, int y) {
    return Math.sin(0.31 * x + 1.3 * Math.sin(0.17 * y)) + 0.5 * Math.cos(0.23 * y + 0.7 * Math.sin(0.11 * x));
  }
  void synthesizeAndBlur() {
    double[] raw = new double[rows * width];
    for (int y = 0; y < rows; y = y + 1) {
      for (int x = 0; x < width; x = x + 1) {
        raw[y * width + x] = base(x, y0 + y);
      }
    }
    // 3x3 box blur (borders copied).
    for (int y = 0; y < rows; y = y + 1) {
      for (int x = 0; x < width; x = x + 1) {
        if (y == 0 || y == rows - 1 || x == 0 || x == width - 1) {
          data[y * width + x] = raw[y * width + x];
        } else {
          double acc = 0.0;
          for (int dy = -1; dy <= 1; dy = dy + 1) {
            for (int dx = -1; dx <= 1; dx = dx + 1) {
              acc = acc + raw[(y + dy) * width + (x + dx)];
            }
          }
          data[y * width + x] = acc / 9.0;
        }
      }
    }
  }
}
class GradPiece {
  flag toGrad;
  flag gradDone;
  int id;
  int y0;
  int rows;
  int width;
  double[] data;    // rows (+halo handled by caller) of the blurred image
  int candN;
  int[] candX;
  int[] candY;
  double[] candR;
  GradPiece(int id, int y0, int rows, int width) {
    this.id = id;
    this.y0 = y0;
    this.rows = rows;
    this.width = width;
    this.data = new double[rows * width];
    this.candX = new int[4];
    this.candY = new int[4];
    this.candR = new double[4];
  }
  void compute() {
    candN = 0;
    for (int y = 1; y < rows - 1; y = y + 1) {
      for (int x = 4; x < width - 4; x = x + 1) {
        double ix = data[y * width + x + 1] - data[y * width + x - 1];
        double iy = data[(y + 1) * width + x] - data[(y - 1) * width + x];
        double r = ix * ix + iy * iy;
        // Keep the four strongest, well-separated responses.
        int slot = -1;
        double weakest = r;
        for (int c = 0; c < 4; c = c + 1) {
          if (c < candN) {
            if (candR[c] < weakest) { weakest = candR[c]; slot = c; }
          } else {
            slot = c;
            weakest = -1.0;
            c = 4;
          }
        }
        if (slot >= 0) {
          boolean tooClose = false;
          for (int c = 0; c < candN; c = c + 1) {
            if (c != slot && Math.iabs(candX[c] - x) < 8 && Math.iabs(candY[c] - (y0 + y)) < 2) {
              tooClose = true;
            }
          }
          if (!tooClose) {
            candX[slot] = x;
            candY[slot] = y0 + y;
            candR[slot] = r;
            if (slot >= candN) { candN = slot + 1; }
          }
        }
      }
    }
  }
}
class FramePiece {
  flag processL;
  flag submitL;
  int frame;
  int first;
  int last;
  int width;
  int height;
  double[] featX;
  double[] featY;
  double[] outX;
  double[] outY;
  double sumDx;
  double sumDy;
  FramePiece(int frame, int first, int last, int width, int height) {
    this.frame = frame;
    this.first = first;
    this.last = last;
    this.width = width;
    this.height = height;
    this.featX = new double[last - first];
    this.featY = new double[last - first];
    this.outX = new double[last - first];
    this.outY = new double[last - first];
  }
  double pix(int f, double x, double y) {
    double xs = x - f;
    return Math.sin(0.31 * xs + 1.3 * Math.sin(0.17 * y)) + 0.5 * Math.cos(0.23 * y + 0.7 * Math.sin(0.11 * xs));
  }
  void track() {
    sumDx = 0.0;
    sumDy = 0.0;
    for (int i = 0; i < last - first; i = i + 1) {
      double fx = featX[i];
      double fy = featY[i];
      int bestDx = 0;
      int bestDy = 0;
      double bestCost = 1.0e30;
      for (int dy = -2; dy <= 2; dy = dy + 1) {
        for (int dx = -2; dx <= 2; dx = dx + 1) {
          double cost = 0.0;
          for (int py = -1; py <= 1; py = py + 1) {
            for (int px = -1; px <= 1; px = px + 1) {
              double a = pix(frame - 1, fx + px, fy + py);
              double b = pix(frame, fx + dx + px, fy + dy + py);
              cost = cost + (a - b) * (a - b);
            }
          }
          if (cost < bestCost) {
            bestCost = cost;
            bestDx = dx;
            bestDy = dy;
          }
        }
      }
      double nx = fx + bestDx;
      double ny = fy + bestDy;
      if (nx < 8.0) { nx = 8.0; }
      if (nx > width - 9.0) { nx = width - 9.0; }
      if (ny < 8.0) { ny = 8.0; }
      if (ny > height - 9.0) { ny = height - 9.0; }
      outX[i] = nx;
      outY[i] = ny;
      sumDx = sumDx + bestDx;
      sumDy = sumDy + bestDy;
    }
  }
}
class FrameResult {
  flag collecting;
  flag frameDone;
  int frame;
  int expected;
  int seen;
  double sumDx;
  double sumDy;
  double[] newX;
  double[] newY;
  FrameResult(int frame, int expected, int nfeatures) {
    this.frame = frame;
    this.expected = expected;
    this.newX = new double[nfeatures];
    this.newY = new double[nfeatures];
  }
  boolean absorb(FramePiece fp) {
    for (int i = fp.first; i < fp.last; i = i + 1) {
      newX[i] = fp.outX[i - fp.first];
      newY[i] = fp.outY[i - fp.first];
    }
    sumDx = sumDx + fp.sumDx;
    sumDy = sumDy + fp.sumDy;
    seen = seen + 1;
    return seen == expected;
  }
}
class TrackMaster {
  flag collectBlur;
  flag collectGrad;
  flag tracking;
  flag finished;
  int width;
  int height;
  int pieces;
  int frames;
  int nfeatures;
  int blurSeen;
  int gradSeen;
  int frame;
  double[] image;
  double[] featX;
  double[] featY;
  double[] featR;
  int nfound;
  double totalDx;
  double totalDy;
  TrackMaster(int width, int height, int pieces, int frames, int nfeatures) {
    this.width = width;
    this.height = height;
    this.pieces = pieces;
    this.frames = frames;
    this.nfeatures = nfeatures;
    this.image = new double[width * height];
    this.featX = new double[nfeatures];
    this.featY = new double[nfeatures];
    this.featR = new double[nfeatures];
  }
  boolean mergeBlur(ImagePiece p) {
    for (int y = 0; y < p.rows; y = y + 1) {
      for (int x = 0; x < width; x = x + 1) {
        image[(p.y0 + y) * width + x] = p.data[y * width + x];
      }
    }
    blurSeen = blurSeen + 1;
    return blurSeen == pieces;
  }
  // Cut the blurred image into gradient pieces (with a one-row halo).
  void fillGradPiece(GradPiece g) {
    for (int y = 0; y < g.rows; y = y + 1) {
      int sy = g.y0 + y - 1;
      if (sy < 0) { sy = 0; }
      if (sy > height - 1) { sy = height - 1; }
      for (int x = 0; x < width; x = x + 1) {
        g.data[y * width + x] = image[sy * width + x];
      }
    }
  }
  boolean mergeGrad(GradPiece g) {
    for (int c = 0; c < g.candN; c = c + 1) {
      // Insert candidate into the running top-N by response.
      int weakest = 0;
      for (int i = 1; i < nfeatures; i = i + 1) {
        if (featR[i] < featR[weakest]) { weakest = i; }
      }
      if (g.candR[c] > featR[weakest]) {
        double cx = g.candX[c];
        double cy = g.candY[c];
        if (cx < 8.0) { cx = 8.0; }
        if (cx > width - 9.0) { cx = width - 9.0; }
        if (cy < 8.0) { cy = 8.0; }
        if (cy > height - 9.0) { cy = height - 9.0; }
        featX[weakest] = cx;
        featY[weakest] = cy;
        featR[weakest] = g.candR[c];
        if (nfound < nfeatures) { nfound = nfound + 1; }
      }
    }
    gradSeen = gradSeen + 1;
    return gradSeen == pieces;
  }
  void fillFramePiece(FramePiece fp) {
    for (int i = fp.first; i < fp.last; i = i + 1) {
      fp.featX[i - fp.first] = featX[i];
      fp.featY[i - fp.first] = featY[i];
    }
  }
  void update(FrameResult fr) {
    for (int i = 0; i < nfeatures; i = i + 1) {
      featX[i] = fr.newX[i];
      featY[i] = fr.newY[i];
    }
    totalDx = totalDx + fr.sumDx;
    totalDy = totalDy + fr.sumDy;
    frame = fr.frame;
  }
}
|}

let tasks =
  {|
task startup(StartupObject s in initialstate) {
  int width = Integer.parseInt(s.args[0]);
  int height = Integer.parseInt(s.args[1]);
  int pieces = Integer.parseInt(s.args[2]);
  int frames = Integer.parseInt(s.args[3]);
  int nfeatures = Integer.parseInt(s.args[4]);
  TrackMaster m = new TrackMaster(width, height, pieces, frames, nfeatures){collectBlur := true};
  int per = height / pieces;
  for (int p = 0; p < pieces; p = p + 1) {
    int rows = per;
    if (p == pieces - 1) { rows = height - p * per; }
    ImagePiece ip = new ImagePiece(p, p * per, rows, width){toBlur := true};
  }
  taskexit(s: initialstate := false);
}
task blurPiece(ImagePiece ip in toBlur) {
  ip.synthesizeAndBlur();
  taskexit(ip: toBlur := false, blurred := true);
}
task mergeBlurPiece(TrackMaster m in collectBlur, ImagePiece ip in blurred) {
  boolean phaseDone = m.mergeBlur(ip);
  if (phaseDone) {
    int per = m.height / m.pieces;
    for (int p = 0; p < m.pieces; p = p + 1) {
      int rows = per + 2;
      if (p == m.pieces - 1) { rows = m.height - p * per + 2; }
      GradPiece g = new GradPiece(p, p * per, rows, m.width){toGrad := true};
      m.fillGradPiece(g);
    }
    taskexit(m: collectBlur := false, collectGrad := true; ip: blurred := false);
  }
  taskexit(ip: blurred := false);
}
task gradPiece(GradPiece g in toGrad) {
  g.compute();
  taskexit(g: toGrad := false, gradDone := true);
}
task mergeGradPiece(TrackMaster m in collectGrad, GradPiece g in gradDone) {
  boolean phaseDone = m.mergeGrad(g);
  if (phaseDone) {
    tag ft = new tag(frametag);
    FrameResult fr = new FrameResult(1, m.pieces, m.nfeatures){collecting := true, add ft};
    int perF = m.nfeatures / m.pieces;
    for (int p = 0; p < m.pieces; p = p + 1) {
      int last = (p + 1) * perF;
      if (p == m.pieces - 1) { last = m.nfeatures; }
      FramePiece fp = new FramePiece(1, p * perF, last, m.width, m.height){processL := true, add ft};
      m.fillFramePiece(fp);
    }
    taskexit(m: collectGrad := false, tracking := true; g: gradDone := false);
  }
  taskexit(g: gradDone := false);
}
task trackPiece(FramePiece fp in processL) {
  fp.track();
  taskexit(fp: processL := false, submitL := true);
}
task mergeFrame(FrameResult fr in collecting with frametag ft,
                FramePiece fp in submitL with frametag ft) {
  boolean frameDone = fr.absorb(fp);
  if (frameDone) {
    taskexit(fr: collecting := false, frameDone := true; fp: submitL := false);
  }
  taskexit(fp: submitL := false);
}
task nextFrame(TrackMaster m in tracking, FrameResult fr in frameDone) {
  m.update(fr);
  if (m.frame < m.frames) {
    tag ft = new tag(frametag);
    FrameResult nfr = new FrameResult(m.frame + 1, m.pieces, m.nfeatures){collecting := true, add ft};
    int perF = m.nfeatures / m.pieces;
    for (int p = 0; p < m.pieces; p = p + 1) {
      int last = (p + 1) * perF;
      if (p == m.pieces - 1) { last = m.nfeatures; }
      FramePiece fp = new FramePiece(m.frame + 1, p * perF, last, m.width, m.height){processL := true, add ft};
      m.fillFramePiece(fp);
    }
    taskexit(fr: frameDone := false);
  }
  int avg = (int)(100.0 * m.totalDx / (m.nfeatures * (m.frames - 0.0)));
  System.printString("tracking avg dx x100: " + avg);
  taskexit(m: tracking := false, finished := true; fr: frameDone := false);
}
|}

let seq_tasks =
  {|
task startup(StartupObject s in initialstate) {
  int width = Integer.parseInt(s.args[0]);
  int height = Integer.parseInt(s.args[1]);
  int pieces = Integer.parseInt(s.args[2]);
  int frames = Integer.parseInt(s.args[3]);
  int nfeatures = Integer.parseInt(s.args[4]);
  TrackMaster m = new TrackMaster(width, height, pieces, frames, nfeatures);
  int per = height / pieces;
  // Image processing phase.
  for (int p = 0; p < pieces; p = p + 1) {
    int rows = per;
    if (p == pieces - 1) { rows = height - p * per; }
    ImagePiece ip = new ImagePiece(p, p * per, rows, width);
    ip.synthesizeAndBlur();
    boolean ignored = m.mergeBlur(ip);
  }
  // Feature extraction phase.
  for (int p = 0; p < pieces; p = p + 1) {
    int rows = per + 2;
    if (p == pieces - 1) { rows = height - p * per + 2; }
    GradPiece g = new GradPiece(p, p * per, rows, width);
    m.fillGradPiece(g);
    g.compute();
    boolean ignored2 = m.mergeGrad(g);
  }
  // Tracking phase.
  int perF = nfeatures / pieces;
  for (int f = 1; f <= frames; f = f + 1) {
    FrameResult fr = new FrameResult(f, pieces, nfeatures);
    for (int p = 0; p < pieces; p = p + 1) {
      int last = (p + 1) * perF;
      if (p == pieces - 1) { last = nfeatures; }
      FramePiece fp = new FramePiece(f, p * perF, last, width, height);
      m.fillFramePiece(fp);
      fp.track();
      boolean ignored3 = fr.absorb(fp);
    }
    m.update(fr);
  }
  int avg = (int)(100.0 * m.totalDx / (nfeatures * (frames - 0.0)));
  System.printString("tracking avg dx x100: " + avg);
  taskexit(s: initialstate := false);
}
|}

let benchmark : Bench_def.t =
  {
    b_name = "Tracking";
    b_descr = "feature tracking (SD-VBS)";
    b_source = classes ^ tasks;
    b_seq_source = classes ^ seq_tasks;
    b_args = [ "192"; "124"; "62"; "5"; "124" ];
    b_args_double = [ "192"; "124"; "62"; "10"; "124" ];
    b_check = Bench_def.output_has "tracking avg dx x100: ";
  }
