(** Registry of the paper's six benchmarks plus the §2 keyword
    counting example. *)

(** The keyword-counting walkthrough of §2, used by the quickstart
    example and the Figure 3/4/6 reproductions. *)
let keyword_counter : Bench_def.t =
  let classes =
    {|
class Text {
  flag process;
  flag submit;
  String data;
  int count;
  Text(String data) {
    this.data = data;
    this.count = 0;
  }
  void process() {
    int i = 0;
    int n = data.length();
    while (i < n) {
      if (data.charAt(i) == 32) { count = count + 1; }
      i = i + 1;
    }
  }
}
class Results {
  flag finished;
  int total;
  int expected;
  int seen;
  Results(int expected) { this.expected = expected; }
  boolean mergeResult(Text t) {
    total = total + t.count;
    seen = seen + 1;
    return seen == expected;
  }
}
|}
  in
  let tasks =
    {|
task startup(StartupObject s in initialstate) {
  int sections = Integer.parseInt(s.args[0]);
  for (int i = 0; i < sections; i = i + 1) {
    Text tp = new Text("the quick brown fox jumps over the lazy dog " + i){process := true};
  }
  Results rp = new Results(sections){finished := false};
  taskexit(s: initialstate := false);
}
task processText(Text tp in process) {
  tp.process();
  taskexit(tp: process := false, submit := true);
}
task mergeIntermediateResult(Results rp in !finished, Text tp in submit) {
  boolean allprocessed = rp.mergeResult(tp);
  if (allprocessed) {
    System.printString("keyword count: " + rp.total);
    taskexit(rp: finished := true; tp: submit := false);
  }
  taskexit(tp: submit := false);
}
|}
  in
  let seq =
    {|
task startup(StartupObject s in initialstate) {
  int sections = Integer.parseInt(s.args[0]);
  Results rp = new Results(sections);
  for (int i = 0; i < sections; i = i + 1) {
    Text tp = new Text("the quick brown fox jumps over the lazy dog " + i);
    tp.process();
    boolean ignored = rp.mergeResult(tp);
  }
  System.printString("keyword count: " + rp.total);
  taskexit(s: initialstate := false);
}
|}
  in
  {
    Bench_def.b_name = "KeywordCount";
    b_descr = "keyword counting walkthrough (paper §2)";
    b_source = classes ^ tasks;
    b_seq_source = classes ^ seq;
    b_args = [ "16" ];
    b_args_double = [ "32" ];
    b_check = Bench_def.output_has "keyword count: ";
  }

(** The six benchmarks of the paper's evaluation, in Figure 7 order. *)
let paper_benchmarks : Bench_def.t list =
  [
    Tracking.benchmark;
    Kmeans.benchmark;
    Montecarlo.benchmark;
    Filterbank.benchmark;
    Fractal.benchmark;
    Series.benchmark;
  ]

let all : Bench_def.t list = paper_benchmarks @ [ keyword_counter ]

let find name =
  match List.find_opt (fun (b : Bench_def.t) -> String.lowercase_ascii b.b_name = String.lowercase_ascii name) all with
  | Some b -> b
  | None ->
      invalid_arg
        (Printf.sprintf "unknown benchmark %s (expected one of: %s)" name
           (String.concat ", " (List.map (fun (b : Bench_def.t) -> b.b_name) all)))
