(** MonteCarlo: financial Monte Carlo simulation, ported from the
    Java Grande benchmark suite (§5.1).

    Each simulation evolves a geometric-Brownian-motion price path and
    reports the terminal price; the aggregation task folds every
    result into running statistics.  The aggregation work per sample
    is non-trivial, which is what lets the synthesizer discover the
    pipelined implementation the paper highlights (aggregation
    overlaps simulation).  Args: [nsims nsteps]. *)

let classes =
  {|
class Simulation {
  flag process;
  flag submit;
  int id;
  int steps;
  double result;
  Simulation(int id, int steps) {
    this.id = id;
    this.steps = steps;
  }
  void simulate() {
    Random rng = new Random(8191 + id * 127);
    double s0 = 100.0;
    double mu = 0.03;
    double sigma = 0.2;
    double dt = 1.0 / steps;
    double drift = (mu - 0.5 * sigma * sigma) * dt;
    double vol = sigma * Math.sqrt(dt);
    double price = s0;
    for (int t = 0; t < steps; t = t + 1) {
      price = price * Math.exp(drift + vol * rng.nextGaussian());
    }
    result = price;
  }
}
class MCResults {
  flag finished;
  int expected;
  int seen;
  double sum;
  double sumsq;
  double[] histogram;
  MCResults(int expected) {
    this.expected = expected;
    this.histogram = new double[64];
  }
  boolean aggregate(Simulation sim) {
    double v = sim.result;
    sum = sum + v;
    sumsq = sumsq + v * v;
    int bucket = (int)(v / 8.0);
    if (bucket > 63) { bucket = 63; }
    if (bucket < 0) { bucket = 0; }
    histogram[bucket] = histogram[bucket] + 1.0;
    // Exponentially-weighted smoothing pass over the histogram makes
    // aggregation heavy enough to pipeline against simulation.
    double acc = 0.0;
    for (int r = 0; r < 6; r = r + 1) {
      for (int i = 0; i < 64; i = i + 1) {
        acc = 0.875 * acc + 0.125 * histogram[i];
      }
    }
    sumsq = sumsq + acc * 0.0;
    seen = seen + 1;
    return seen == expected;
  }
}
|}

let tasks =
  {|
task startup(StartupObject s in initialstate) {
  int nsims = Integer.parseInt(s.args[0]);
  int nsteps = Integer.parseInt(s.args[1]);
  for (int i = 0; i < nsims; i = i + 1) {
    Simulation sim = new Simulation(i, nsteps){process := true};
  }
  MCResults res = new MCResults(nsims){finished := false};
  taskexit(s: initialstate := false);
}
task simulate(Simulation sim in process) {
  sim.simulate();
  taskexit(sim: process := false, submit := true);
}
task aggregate(MCResults res in !finished, Simulation sim in submit) {
  boolean done = res.aggregate(sim);
  if (done) {
    System.printString("montecarlo mean: " + (int)(1000.0 * res.sum / res.expected));
    taskexit(res: finished := true; sim: submit := false);
  }
  taskexit(sim: submit := false);
}
|}

let seq_tasks =
  {|
task startup(StartupObject s in initialstate) {
  int nsims = Integer.parseInt(s.args[0]);
  int nsteps = Integer.parseInt(s.args[1]);
  MCResults res = new MCResults(nsims);
  for (int i = 0; i < nsims; i = i + 1) {
    Simulation sim = new Simulation(i, nsteps);
    sim.simulate();
    boolean done = res.aggregate(sim);
  }
  System.printString("montecarlo mean: " + (int)(1000.0 * res.sum / res.expected));
  taskexit(s: initialstate := false);
}
|}

let benchmark : Bench_def.t =
  {
    b_name = "MonteCarlo";
    b_descr = "Monte Carlo price-path simulation (Java Grande)";
    b_source = classes ^ tasks;
    b_seq_source = classes ^ seq_tasks;
    b_args = [ "124"; "3000" ];
    b_args_double = [ "248"; "3000" ];
    b_check = Bench_def.output_has "montecarlo mean: ";
  }
