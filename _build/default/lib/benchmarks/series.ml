(** Series: Fourier coefficient computation, ported from the Java
    Grande benchmark suite (§5.1).

    Computes the first [n] Fourier coefficient pairs of
    f(x) = (x+1)^x on [0,2] by trapezoidal integration with
    [intervals] points per coefficient.  Args: [ncoeffs intervals]. *)

let classes =
  {|
class SeriesRange {
  flag process;
  flag submit;
  int first;
  int last;
  int intervals;
  double[] a;
  double[] b;
  SeriesRange(int first, int last, int intervals) {
    this.first = first;
    this.last = last;
    this.intervals = intervals;
    this.a = new double[last - first];
    this.b = new double[last - first];
  }
  double f(double x) {
    return Math.pow(x + 1.0, x);
  }
  void compute() {
    double period = 2.0;
    double dx = period / intervals;
    double omega = 2.0 * 3.141592653589793 / period;
    for (int n = first; n < last; n = n + 1) {
      double asum = 0.0;
      double bsum = 0.0;
      double x = 0.0;
      for (int i = 0; i < intervals; i = i + 1) {
        double fx = f(x + 0.5 * dx);
        if (n == 0) {
          asum = asum + fx * dx;
        } else {
          asum = asum + fx * Math.cos(omega * n * (x + 0.5 * dx)) * dx;
          bsum = bsum + fx * Math.sin(omega * n * (x + 0.5 * dx)) * dx;
        }
        x = x + dx;
      }
      a[n - first] = 2.0 * asum / period;
      b[n - first] = 2.0 * bsum / period;
    }
  }
}
class SeriesResults {
  flag finished;
  int expected;
  int seen;
  double checksum;
  SeriesResults(int expected) { this.expected = expected; }
  boolean merge(SeriesRange r) {
    for (int i = 0; i < r.a.length; i = i + 1) {
      double av = r.a[i];
      double bv = r.b[i];
      if (av < 0.0) { av = -av; }
      if (bv < 0.0) { bv = -bv; }
      checksum = checksum + av + bv;
    }
    seen = seen + 1;
    return seen == expected;
  }
}
|}

let tasks =
  {|
task startup(StartupObject s in initialstate) {
  int ncoeffs = Integer.parseInt(s.args[0]);
  int intervals = Integer.parseInt(s.args[1]);
  int ranges = Integer.parseInt(s.args[2]);
  int per = ncoeffs / ranges;
  for (int r = 0; r < ranges; r = r + 1) {
    int last = (r + 1) * per;
    if (r == ranges - 1) { last = ncoeffs; }
    SeriesRange sr = new SeriesRange(r * per, last, intervals){process := true};
  }
  SeriesResults res = new SeriesResults(ranges){finished := false};
  taskexit(s: initialstate := false);
}
task computeRange(SeriesRange r in process) {
  r.compute();
  taskexit(r: process := false, submit := true);
}
task mergeRange(SeriesResults res in !finished, SeriesRange r in submit) {
  boolean done = res.merge(r);
  if (done) {
    System.printString("series checksum: " + (int)(res.checksum * 1000.0));
    taskexit(res: finished := true; r: submit := false);
  }
  taskexit(r: submit := false);
}
|}

let seq_tasks =
  {|
task startup(StartupObject s in initialstate) {
  int ncoeffs = Integer.parseInt(s.args[0]);
  int intervals = Integer.parseInt(s.args[1]);
  int ranges = Integer.parseInt(s.args[2]);
  int per = ncoeffs / ranges;
  SeriesResults res = new SeriesResults(ranges);
  for (int r = 0; r < ranges; r = r + 1) {
    int last = (r + 1) * per;
    if (r == ranges - 1) { last = ncoeffs; }
    SeriesRange sr = new SeriesRange(r * per, last, intervals);
    sr.compute();
    boolean done = res.merge(sr);
  }
  System.printString("series checksum: " + (int)(res.checksum * 1000.0));
  taskexit(s: initialstate := false);
}
|}

let benchmark : Bench_def.t =
  {
    b_name = "Series";
    b_descr = "Fourier series coefficients (Java Grande)";
    b_source = classes ^ tasks;
    b_seq_source = classes ^ seq_tasks;
    b_args = [ "124"; "1200"; "124" ];
    b_args_double = [ "248"; "1200"; "248" ];
    b_check = Bench_def.output_has "series checksum: ";
  }
