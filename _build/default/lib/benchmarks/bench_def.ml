(** Benchmark definitions.

    Every benchmark of the paper's evaluation (§5) is a pair of
    Bamboo programs over the same classes and methods:

    - the *task version*, structured as Bamboo tasks with flag
      guards — what the synthesis pipeline parallelizes; and
    - the *sequential version*, a single startup task that performs
      the whole computation through plain method calls — the
      stand-in for the paper's single-core C version (it pays no task
      dispatch, locking, or messaging overhead beyond one startup
      dispatch).

    Inputs are synthesized in-program from the deterministic [Random]
    builtin, so runs are exactly reproducible.  [b_args] is the
    paper's "original" input; [b_args_double] doubles the workload
    (Figure 11). *)

type t = {
  b_name : string;
  b_descr : string;
  b_source : string;              (* task version *)
  b_seq_source : string;          (* sequential version *)
  b_args : string list;           (* original input *)
  b_args_double : string list;    (* doubled workload *)
  b_check : string -> bool;       (* sanity-check the program output *)
}

(** Output check helper: the program printed a line starting with
    [prefix]. *)
let output_has prefix out =
  String.split_on_char '\n' out |> List.exists (fun l -> String.length l >= String.length prefix && String.sub l 0 (String.length prefix) = prefix)

(** Extract the value after [prefix] on the first matching line. *)
let output_value prefix out =
  String.split_on_char '\n' out
  |> List.find_map (fun l ->
         if String.length l >= String.length prefix && String.sub l 0 (String.length prefix) = prefix
         then Some (String.sub l (String.length prefix) (String.length l - String.length prefix))
         else None)
