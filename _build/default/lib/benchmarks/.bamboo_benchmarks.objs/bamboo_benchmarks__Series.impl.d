lib/benchmarks/series.ml: Bench_def
