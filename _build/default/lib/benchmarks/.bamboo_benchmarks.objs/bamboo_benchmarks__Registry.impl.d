lib/benchmarks/registry.ml: Bench_def Filterbank Fractal Kmeans List Montecarlo Printf Series String Tracking
