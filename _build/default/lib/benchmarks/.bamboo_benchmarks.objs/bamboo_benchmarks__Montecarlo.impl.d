lib/benchmarks/montecarlo.ml: Bench_def
