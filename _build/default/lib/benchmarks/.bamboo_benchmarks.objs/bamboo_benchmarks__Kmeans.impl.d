lib/benchmarks/kmeans.ml: Bench_def
