lib/benchmarks/fractal.ml: Bench_def
