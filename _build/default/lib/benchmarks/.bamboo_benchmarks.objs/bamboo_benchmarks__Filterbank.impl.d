lib/benchmarks/filterbank.ml: Bench_def
