lib/benchmarks/bench_def.ml: List String
