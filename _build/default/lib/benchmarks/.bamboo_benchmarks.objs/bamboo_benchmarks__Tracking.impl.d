lib/benchmarks/tracking.ml: Bench_def
