lib/benchmarks/experiments.ml: Bamboo Bench_def Hashtbl List Unix
