(** KMeans: K-means clustering, ported from the STAMP suite (§5.1).

    Following the paper's port, no transactions guard the shared
    cluster statistics: one core owns the [Master] object and the
    chunk tasks send partial sums to it.  Iteration is expressed with
    abstract states: chunks cycle through
    [process -> submit -> parked -> process] while the master cycles
    through [collecting -> redistributing -> collecting] until the
    centroids converge (or the iteration budget runs out), which
    moves the master to [finished].

    Args: [npoints dims k chunks maxiter]. *)

let classes =
  {|
class Chunk {
  flag process;
  flag submit;
  flag parked;
  int id;
  int npoints;
  int dims;
  int k;
  double[] points;     // flattened npoints x dims
  double[] centroids;  // flattened k x dims, chunk-local copy
  double[] sums;       // flattened k x dims, partial result
  int[] counts;
  int initialized;
  Chunk(int id, int npoints, int dims, int k) {
    this.id = id;
    this.npoints = npoints;
    this.dims = dims;
    this.k = k;
    this.points = new double[npoints * dims];
    this.centroids = new double[k * dims];
    this.sums = new double[k * dims];
    this.counts = new int[k];
  }
  // Point generation happens lazily on the first assignment round so
  // it runs in parallel on the chunk's own core rather than inside
  // the serial startup task.
  void init() {
    Random rng = new Random(977 + id * 61);
    for (int i = 0; i < npoints; i = i + 1) {
      int cluster = i % k;
      for (int d = 0; d < dims; d = d + 1) {
        points[i * dims + d] = 10.0 * cluster + rng.nextGaussian();
      }
    }
    initialized = 1;
  }
  void assign() {
    if (initialized == 0) { init(); }
    for (int c = 0; c < k; c = c + 1) {
      counts[c] = 0;
      for (int d = 0; d < dims; d = d + 1) {
        sums[c * dims + d] = 0.0;
      }
    }
    for (int i = 0; i < npoints; i = i + 1) {
      int best = 0;
      double bestDist = 1.0e30;
      for (int c = 0; c < k; c = c + 1) {
        double dist = 0.0;
        for (int d = 0; d < dims; d = d + 1) {
          double diff = points[i * dims + d] - centroids[c * dims + d];
          dist = dist + diff * diff;
        }
        if (dist < bestDist) {
          bestDist = dist;
          best = c;
        }
      }
      counts[best] = counts[best] + 1;
      for (int d = 0; d < dims; d = d + 1) {
        sums[best * dims + d] = sums[best * dims + d] + points[i * dims + d];
      }
    }
  }
}
class Master {
  flag collecting;
  flag redistributing;
  flag finished;
  int k;
  int dims;
  int chunks;
  int seen;
  int redistributed;
  int iteration;
  int maxiter;
  double moved;
  double[] centroids;
  double[] sums;
  int[] counts;
  Master(int k, int dims, int chunks, int maxiter) {
    this.k = k;
    this.dims = dims;
    this.chunks = chunks;
    this.maxiter = maxiter;
    this.centroids = new double[k * dims];
    this.sums = new double[k * dims];
    this.counts = new int[k];
    for (int c = 0; c < k; c = c + 1) {
      for (int d = 0; d < dims; d = d + 1) {
        centroids[c * dims + d] = 25.0 * c / k + 1.0 * d;
      }
    }
  }
  boolean merge(Chunk ch) {
    for (int c = 0; c < k; c = c + 1) {
      counts[c] = counts[c] + ch.counts[c];
      for (int d = 0; d < dims; d = d + 1) {
        sums[c * dims + d] = sums[c * dims + d] + ch.sums[c * dims + d];
      }
    }
    seen = seen + 1;
    return seen == chunks;
  }
  void recompute() {
    moved = 0.0;
    for (int c = 0; c < k; c = c + 1) {
      for (int d = 0; d < dims; d = d + 1) {
        double nc = centroids[c * dims + d];
        if (counts[c] > 0) {
          nc = sums[c * dims + d] / counts[c];
        }
        double diff = nc - centroids[c * dims + d];
        if (diff < 0.0) { diff = -diff; }
        moved = moved + diff;
        centroids[c * dims + d] = nc;
        sums[c * dims + d] = 0.0;
      }
      counts[c] = 0;
    }
    seen = 0;
    iteration = iteration + 1;
  }
  boolean converged() {
    if (iteration >= maxiter) { return true; }
    return moved < 0.001;
  }
  void share(Chunk ch) {
    for (int i = 0; i < k * dims; i = i + 1) {
      ch.centroids[i] = centroids[i];
    }
  }
}
|}

let tasks =
  {|
task startup(StartupObject s in initialstate) {
  int npoints = Integer.parseInt(s.args[0]);
  int dims = Integer.parseInt(s.args[1]);
  int k = Integer.parseInt(s.args[2]);
  int chunks = Integer.parseInt(s.args[3]);
  int maxiter = Integer.parseInt(s.args[4]);
  Master m = new Master(k, dims, chunks, maxiter){redistributing := true, finished := false};
  int per = npoints / chunks;
  for (int c = 0; c < chunks; c = c + 1) {
    Chunk ch = new Chunk(c, per, dims, k){parked := true};
  }
  taskexit(s: initialstate := false);
}
// A fresh round begins by pushing the master's centroids into every
// parked chunk; the last chunk flips the master to collecting.
task distribute(Master m in redistributing, Chunk ch in parked) {
  m.share(ch);
  m.redistributed = m.redistributed + 1;
  if (m.redistributed == m.chunks) {
    m.redistributed = 0;
    taskexit(m: redistributing := false, collecting := true; ch: parked := false, process := true);
  }
  taskexit(ch: parked := false, process := true);
}
task assignChunk(Chunk ch in process) {
  ch.assign();
  taskexit(ch: process := false, submit := true);
}
task mergeChunk(Master m in collecting, Chunk ch in submit) {
  boolean roundDone = m.merge(ch);
  if (roundDone) {
    m.recompute();
    if (m.converged()) {
      System.printString("kmeans iterations: " + m.iteration);
      taskexit(m: collecting := false, finished := true; ch: submit := false, parked := true);
    }
    taskexit(m: collecting := false, redistributing := true; ch: submit := false, parked := true);
  }
  taskexit(ch: submit := false, parked := true);
}
|}

let seq_tasks =
  {|
task startup(StartupObject s in initialstate) {
  int npoints = Integer.parseInt(s.args[0]);
  int dims = Integer.parseInt(s.args[1]);
  int k = Integer.parseInt(s.args[2]);
  int chunks = Integer.parseInt(s.args[3]);
  int maxiter = Integer.parseInt(s.args[4]);
  Master m = new Master(k, dims, chunks, maxiter);
  int per = npoints / chunks;
  Chunk[] cs = new Chunk[chunks];
  for (int c = 0; c < chunks; c = c + 1) {
    cs[c] = new Chunk(c, per, dims, k);
  }
  boolean done = false;
  while (!done) {
    for (int c = 0; c < chunks; c = c + 1) {
      m.share(cs[c]);
      cs[c].assign();
      boolean roundDone = m.merge(cs[c]);
    }
    m.recompute();
    done = m.converged();
  }
  System.printString("kmeans iterations: " + m.iteration);
  taskexit(s: initialstate := false);
}
|}

let benchmark : Bench_def.t =
  {
    b_name = "KMeans";
    b_descr = "K-means clustering (STAMP)";
    b_source = classes ^ tasks;
    b_seq_source = classes ^ seq_tasks;
    b_args = [ "24800"; "4"; "5"; "124"; "10" ];
    b_args_double = [ "49600"; "4"; "5"; "248"; "10" ];
    b_check = Bench_def.output_has "kmeans iterations: ";
  }
