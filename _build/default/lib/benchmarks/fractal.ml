(** Fractal: Mandelbrot-set computation (§5.1).

    The image is split into row blocks; each block counts the pixels
    that stay bounded after [maxiter] iterations.  Args:
    [width height blocks maxiter]. *)

let classes =
  {|
class Block {
  flag process;
  flag submit;
  int y0;
  int rows;
  int width;
  int height;
  int maxiter;
  int count;
  Block(int y0, int rows, int width, int height, int maxiter) {
    this.y0 = y0;
    this.rows = rows;
    this.width = width;
    this.height = height;
    this.maxiter = maxiter;
  }
  void compute() {
    int inside = 0;
    for (int y = y0; y < y0 + rows; y = y + 1) {
      double ci = -1.25 + (2.5 * y) / height;
      for (int x = 0; x < width; x = x + 1) {
        double cr = -2.0 + (3.0 * x) / width;
        double zr = 0.0;
        double zi = 0.0;
        int it = 0;
        boolean bounded = true;
        while (bounded && it < maxiter) {
          double t = zr * zr - zi * zi + cr;
          zi = 2.0 * zr * zi + ci;
          zr = t;
          if (zr * zr + zi * zi > 4.0) { bounded = false; }
          it = it + 1;
        }
        if (bounded) { inside = inside + 1; }
      }
    }
    count = inside;
  }
}
class FracResults {
  flag finished;
  int expected;
  int seen;
  int total;
  FracResults(int expected) { this.expected = expected; }
  boolean merge(Block b) {
    total = total + b.count;
    seen = seen + 1;
    return seen == expected;
  }
}
|}

let tasks =
  {|
task startup(StartupObject s in initialstate) {
  int width = Integer.parseInt(s.args[0]);
  int height = Integer.parseInt(s.args[1]);
  int blocks = Integer.parseInt(s.args[2]);
  int maxiter = Integer.parseInt(s.args[3]);
  int per = height / blocks;
  for (int b = 0; b < blocks; b = b + 1) {
    int rows = per;
    if (b == blocks - 1) { rows = height - b * per; }
    Block blk = new Block(b * per, rows, width, height, maxiter){process := true};
  }
  FracResults r = new FracResults(blocks){finished := false};
  taskexit(s: initialstate := false);
}
task computeBlock(Block b in process) {
  b.compute();
  taskexit(b: process := false, submit := true);
}
task mergeBlock(FracResults r in !finished, Block b in submit) {
  boolean done = r.merge(b);
  if (done) {
    System.printString("fractal inside: " + r.total);
    taskexit(r: finished := true; b: submit := false);
  }
  taskexit(b: submit := false);
}
|}

let seq_tasks =
  {|
task startup(StartupObject s in initialstate) {
  int width = Integer.parseInt(s.args[0]);
  int height = Integer.parseInt(s.args[1]);
  int blocks = Integer.parseInt(s.args[2]);
  int maxiter = Integer.parseInt(s.args[3]);
  int per = height / blocks;
  int total = 0;
  for (int b = 0; b < blocks; b = b + 1) {
    int rows = per;
    if (b == blocks - 1) { rows = height - b * per; }
    Block blk = new Block(b * per, rows, width, height, maxiter);
    blk.compute();
    total = total + blk.count;
  }
  System.printString("fractal inside: " + total);
  taskexit(s: initialstate := false);
}
|}

let benchmark : Bench_def.t =
  {
    b_name = "Fractal";
    b_descr = "Mandelbrot set computation";
    b_source = classes ^ tasks;
    b_seq_source = classes ^ seq_tasks;
    b_args = [ "96"; "248"; "248"; "160" ];
    b_args_double = [ "96"; "496"; "496"; "160" ];
    b_check = Bench_def.output_has "fractal inside: ";
  }
