lib/sim/critpath.ml: Array Bamboo_ir Buffer Hashtbl List Printf Schedsim Seq
