lib/sim/schedsim.ml: Array Bamboo_analysis Bamboo_interp Bamboo_ir Bamboo_machine Bamboo_profile Bamboo_support Float Hashtbl List Queue
