examples/montecarlo_pipeline.mli:
