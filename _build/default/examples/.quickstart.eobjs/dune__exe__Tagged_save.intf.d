examples/tagged_save.mli:
