examples/quickstart.mli:
