examples/quickstart.ml: Array Bamboo Bamboo_benchmarks Format List Printf String
