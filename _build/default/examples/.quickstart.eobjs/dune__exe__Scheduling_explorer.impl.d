examples/scheduling_explorer.ml: Bamboo Bamboo_benchmarks List Printf
