examples/tagged_save.ml: Array Bamboo Printf
