examples/scheduling_explorer.mli:
