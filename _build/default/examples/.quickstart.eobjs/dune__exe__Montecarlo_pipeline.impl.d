examples/montecarlo_pipeline.ml: Array Bamboo Bamboo_benchmarks List Printf String
