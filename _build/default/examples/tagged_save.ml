(* Tags: the paper's §3 image-save example.

     dune exec examples/tagged_save.exe

   Two drawings are saved concurrently.  Saving creates an
   uncompressed Image, a library-style task compresses it, and the
   finishing task must pair each Drawing with *its own* compressed
   Image — which is exactly what tag constraints guarantee.  Without
   tags the two concurrent saves could swap images. *)

let source =
  {|
class Drawing {
  flag saving;
  flag saved;
  int id;
  int imageChecksum;
  Drawing(int id) { this.id = id; }
}
class Image {
  flag uncompressed;
  flag compressed;
  int owner;
  int[] data;
  int checksum;
  Image(int owner, int size) {
    this.owner = owner;
    this.data = new int[size];
    for (int i = 0; i < size; i = i + 1) {
      data[i] = (owner * 1000) + (i * 7 % 255);
    }
  }
  void compress() {
    // run-length "compression" ending in a checksum
    int acc = 0;
    for (int i = 0; i < data.length; i = i + 1) {
      acc = (acc * 31 + data[i]) % 1000003;
    }
    checksum = acc;
  }
}
task startup(StartupObject s in initialstate) {
  for (int d = 0; d < 2; d = d + 1) {
    tag savetag = new tag(save);
    Drawing dr = new Drawing(d){saving := true, add savetag};
    Image im = new Image(d, 64 + d * 32){uncompressed := true, add savetag};
  }
  taskexit(s: initialstate := false);
}
// Library block: compresses any uncompressed image.
task compressImage(Image im in uncompressed) {
  im.compress();
  taskexit(im: uncompressed := false, compressed := true);
}
// The tag constraint pairs the drawing with ITS image.
task finishSave(Drawing dr in saving with save t, Image im in compressed with save t) {
  dr.imageChecksum = im.checksum;
  System.printString("drawing " + dr.id + " saved image of owner " + im.owner
                     + " (checksum " + im.checksum + ")");
  if (dr.id != im.owner) {
    System.printString("BUG: images were swapped!");
  }
  taskexit(dr: saving := false, saved := true; im: compressed := false);
}
|}

let () =
  let prog = Bamboo.compile source in
  let an = Bamboo.analyse prog in
  print_endline "running the two concurrent saves on 4 cores:";
  let machine = Bamboo.Machine.quad in
  let layout = Bamboo.Layout.create machine ~ntasks:(Array.length prog.tasks) in
  Array.iter
    (fun (t : Bamboo.Ir.taskinfo) ->
      match t.t_name with
      | "compressImage" -> Bamboo.Layout.set_cores layout t.t_id [| 1; 2 |]
      | "finishSave" ->
          (* both parameters are tag-constrained, so the task may be
             instantiated on several cores with tag-hash routing *)
          Bamboo.Layout.set_cores layout t.t_id [| 2; 3 |]
      | _ -> Bamboo.Layout.set_cores layout t.t_id [| 0 |])
    prog.tasks;
  let r = Bamboo.execute prog an layout in
  print_string r.r_output;
  Printf.printf "(%d invocations, %d cycles)\n" r.r_invocations r.r_total_cycles
