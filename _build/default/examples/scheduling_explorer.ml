(* Scheduling explorer: candidate layouts, simulated traces, the
   critical path, and directed simulated annealing, on a small
   machine where everything is easy to read.

     dune exec examples/scheduling_explorer.exe

   Reproduces, at toy scale, the machinery behind the paper's
   Figures 6 and 10. *)

let () =
  let bench = Bamboo_benchmarks.Registry.keyword_counter in
  let prog = Bamboo.compile bench.b_source in
  let an = Bamboo.analyse prog in
  let prof = Bamboo.profile ~args:[ "12" ] prog in
  let machine = Bamboo.Machine.quad in

  (* 1. Enumerate every non-isomorphic candidate implementation. *)
  let dg = Bamboo.Candidates.task_graph an.cstg prof in
  let grouping = Bamboo.Candidates.scc_grouping prog dg in
  let mults = Bamboo.Candidates.task_mults prog prof dg ~machine in
  let layouts = Bamboo.Candidates.enumerate ~cap:2000 prog machine grouping mults in
  Printf.printf "enumerated %d non-isomorphic candidate layouts on 4 cores\n"
    (List.length layouts);
  let scored =
    List.map (fun l -> (Bamboo.estimate prog prof l, l)) layouts
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let ests = List.map (fun (e, _) -> float_of_int e) scored in
  print_endline "estimated-cycles distribution over all candidates (cf. Figure 10):";
  print_endline
    (Bamboo.Table.render_histogram (Bamboo.Stats.histogram_pct ~bins:10 ests));
  let best_est, best_layout = List.hd scored in
  let worst_est, _ = List.nth scored (List.length scored - 1) in
  Printf.printf "best %d cycles, worst %d cycles (%.1fx apart)\n\n" best_est worst_est
    (float_of_int worst_est /. float_of_int best_est);

  (* 2. Trace the best layout and show its critical path (Figure 6). *)
  print_endline "simulated trace of the best layout ('*' marks the critical path):";
  let sim = Bamboo.Schedsim.simulate prog prof best_layout in
  let cp = Bamboo.Critpath.analyse sim in
  print_string (Bamboo.Critpath.to_string prog sim cp);

  (* 3. DSA from a deliberately poor start reaches the same quality. *)
  let poor =
    match List.rev scored with (_, l) :: _ -> l | [] -> best_layout
  in
  let o = Bamboo.Dsa.optimize ~seed:3 prog prof [ poor ] in
  Printf.printf
    "\nDSA from the worst start: %d cycles after evaluating %d layouts (enumerated best: %d)\n"
    o.best_cycles o.evaluated best_est
