(* Quickstart: the paper's §2 keyword-counting example, end to end.

     dune exec examples/quickstart.exe

   Walks the whole pipeline on the walkthrough program: compile,
   static analyses (ASTG/CSTG — the paper's Figure 3), single-core
   profiling, layout synthesis for a quad-core machine (Figure 4),
   and execution on the many-core runtime. *)

let () =
  let bench = Bamboo_benchmarks.Registry.keyword_counter in
  print_endline "=== 1. compile ===";
  let prog = Bamboo.compile bench.b_source in
  Printf.printf "classes: %s\n"
    (String.concat ", "
       (Array.to_list (Array.map (fun c -> c.Bamboo.Ir.c_name) prog.classes)));
  Printf.printf "tasks:   %s\n\n"
    (String.concat ", " (Array.to_list (Array.map (fun t -> t.Bamboo.Ir.t_name) prog.tasks)));

  print_endline "=== 2. static analyses ===";
  let an = Bamboo.analyse prog in
  Array.iter
    (fun (a : Bamboo.Astg.t) ->
      let c = Bamboo.Ir.class_of prog a.a_class in
      if a.a_states <> [] then
        Printf.printf "ASTG %-14s %d states, %d transitions\n" c.c_name
          (List.length a.a_states) (List.length a.a_transitions))
    an.astgs;
  print_endline "\nCSTG (paper Figure 3), as Graphviz dot:";
  print_string (Bamboo.Dot.to_string (Bamboo.Cstg.to_dot an.cstg));

  print_endline "=== 3. profile on one core ===";
  let prof, r1 = Bamboo.Profile.collect ~args:[ "16" ] prog in
  Printf.printf "1-core execution: %d cycles\n" r1.r_total_cycles;
  Format.printf "%a@?" (fun fmt () -> Bamboo.Profile.pp fmt prog prof) ();

  print_endline "\n=== 4. synthesize a quad-core layout (paper Figure 4) ===";
  let outcome = Bamboo.synthesize ~seed:7 prog an prof Bamboo.Machine.quad in
  Printf.printf "estimated %d cycles after evaluating %d candidate layouts\n"
    outcome.best_cycles outcome.evaluated;
  print_string (Bamboo.Layout.to_string prog outcome.best);

  print_endline "\n=== 5. execute on the many-core runtime ===";
  let r4 = Bamboo.execute ~args:[ "16" ] prog an outcome.best in
  print_string r4.r_output;
  Printf.printf "4-core execution: %d cycles  (speedup %.2fx, estimate error %+.1f%%)\n"
    r4.r_total_cycles
    (float_of_int r1.r_total_cycles /. float_of_int r4.r_total_cycles)
    (Bamboo.Stats.error_pct
       ~estimate:(float_of_int outcome.best_cycles)
       ~real:(float_of_int r4.r_total_cycles))
