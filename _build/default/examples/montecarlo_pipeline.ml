(* MonteCarlo pipelining (paper §5.4 discussion).

     dune exec examples/montecarlo_pipeline.exe

   The paper's surprise result: for large enough workloads the
   synthesizer discovers a heterogeneous implementation that overlaps
   the aggregation task with the simulation tasks (pipelining), which
   a smaller profile does not expose.  This example profiles the
   MonteCarlo benchmark at both sizes, synthesizes a layout from
   each, and runs both on the doubled workload. *)

let () =
  let b = Bamboo_benchmarks.Registry.find "MonteCarlo" in
  let prog = Bamboo.compile b.b_source in
  let an = Bamboo.analyse prog in
  let machine = Bamboo.Machine.tilepro64 in

  Printf.printf "profiling with the original input (%s)...\n%!" (String.concat " " b.b_args);
  let prof_small = Bamboo.profile ~args:b.b_args prog in
  Printf.printf "profiling with the doubled input (%s)...\n%!"
    (String.concat " " b.b_args_double);
  let prof_big = Bamboo.profile ~args:b.b_args_double prog in

  let layout_small = (Bamboo.synthesize ~seed:11 prog an prof_small machine).best in
  let layout_big = (Bamboo.synthesize ~seed:11 prog an prof_big machine).best in

  let describe name layout =
    Printf.printf "\nlayout from %s profile:\n" name;
    Array.iteri
      (fun tid cores ->
        Printf.printf "  %-12s on %2d core(s)\n" prog.tasks.(tid).Bamboo.Ir.t_name
          (Array.length cores))
      layout.Bamboo.Layout.assignment;
    (* Pipelining shows up as the aggregate task having its own
       core(s), disjoint from the simulate cores, so aggregation of
       early results overlaps later simulations. *)
    let cores_of name =
      match Bamboo.Ir.find_task prog name with
      | Some t ->
          Array.to_list (Bamboo.Layout.cores_of layout t.t_id) |> List.sort_uniq compare
      | None -> []
    in
    let agg = cores_of "aggregate" and sim = cores_of "simulate" in
    let overlap = List.filter (fun c -> List.mem c sim) agg in
    if agg <> [] && overlap = [] then
      print_endline "  -> aggregation runs on a dedicated core: pipelined with simulation"
    else print_endline "  -> aggregation shares cores with simulation"
  in
  describe "original" layout_small;
  describe "doubled" layout_big;

  print_endline "\nrunning the doubled workload under both layouts:";
  let r1 = Bamboo.Runtime.run_single ~args:b.b_args_double prog in
  let run name layout =
    let r = Bamboo.execute ~args:b.b_args_double prog an layout in
    Printf.printf "  %-18s %10d cycles  speedup %.1fx\n" name r.r_total_cycles
      (float_of_int r1.r_total_cycles /. float_of_int r.r_total_cycles)
  in
  Printf.printf "  %-18s %10d cycles\n" "1-core baseline" r1.r_total_cycles;
  run "original profile" layout_small;
  run "doubled profile" layout_big
